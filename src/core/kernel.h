/**
 * @file
 * The V++ kernel virtual-memory module (paper §2.1).
 *
 * The kernel provides exactly the mechanism the paper argues for and no
 * policy: segments with installable page frames, bound regions
 * (including copy-on-write), an explicit manager per segment, the
 * MigratePages / ModifyPageFlags / GetPageAttributes operations, and
 * delivery of page, protection and copy-on-write faults to user-level
 * managers. Page reclamation, writeback and allocation policy all live
 * in process-level managers (src/managers, src/appmgr).
 *
 * Every public operation is a coroutine that charges its control-path
 * cost from the machine's CostModel before doing the functional work;
 * `...Now` variants perform the same work in zero simulated time and
 * exist for setup code and tests.
 */

#ifndef VPP_CORE_KERNEL_H
#define VPP_CORE_KERNEL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/fault.h"
#include "core/manager.h"
#include "core/process.h"
#include "core/segment.h"
#include "core/types.h"
#include "hw/config.h"
#include "hw/physmem.h"
#include "hw/tlb.h"
#include "inject/inject.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace vpp::kernel {

/** Ownership record for one base page frame. */
struct FrameOwner
{
    SegmentId segment = kPhysSegment;
    PageIndex page = 0;       ///< page index within the owning segment
    UserId lastUser = kSystemUser; ///< last user the frame was given to
};

/**
 * Kernel defenses against misbehaving segment managers (§2-§3: the
 * kernel retains ultimate authority). Disabled by default, in which
 * case fault delivery is the plain invoke-and-wait path with an
 * identical event sequence. When enabled, each handler invocation
 * races a deadline; an expired, crashed or lying attempt is
 * redelivered with doubling backoff, and after maxRedeliveries the
 * kernel unilaterally reclaims the manager's clean frames and fails
 * the segment over to the default manager.
 */
struct ResiliencePolicy
{
    bool enabled = false;
    sim::Duration faultDeadline = sim::msec(50);
    int maxRedeliveries = 3;
    sim::Duration retryBackoff = sim::usec(500); ///< doubles per retry
    bool failover = true;          ///< reassign to the default manager
    bool reclaimOnFailover = true; ///< sweep clean frames to phys pool
};

class Kernel
{
  public:
    Kernel(sim::Simulation &s, const hw::MachineConfig &config);

    sim::Simulation &simulation() { return *sim_; }
    const hw::MachineConfig &config() const { return config_; }
    hw::PhysicalMemory &memory() { return memory_; }

    /** TLB model (active when MachineConfig::modelTlb is set). */
    hw::Tlb *tlb() { return tlb_ ? tlb_.get() : nullptr; }

    // ------------------------------------------------------------------
    // Resilience (fault-handling deadlines, failover, injection)
    // ------------------------------------------------------------------

    /** Install the kernel's defenses against misbehaving managers. */
    void setResiliencePolicy(const ResiliencePolicy &p)
    {
        resilience_ = p;
    }
    const ResiliencePolicy &resiliencePolicy() const
    {
        return resilience_;
    }

    /**
     * The manager of last resort (the UCDS role, §2.3). Failover
     * reassigns an unresponsive manager's segment here. The default
     * manager is part of the trusted system base, so fault injection
     * never targets it.
     */
    void setDefaultManager(SegmentManager *m) { defaultMgr_ = m; }
    SegmentManager *defaultManager() const { return defaultMgr_; }

    /** Attach (or detach with nullptr) a fault-injection engine. */
    void setInjector(inject::Engine *e) { inject_ = e; }
    inject::Engine *injector() const { return inject_; }

    // ------------------------------------------------------------------
    // Segment operations (paper API; charge simulated time)
    // ------------------------------------------------------------------

    sim::Task<SegmentId>
    createSegment(std::string name, std::uint32_t page_size,
                  std::uint64_t page_limit, UserId owner,
                  SegmentManager *mgr = nullptr);

    /**
     * Destroy a segment: the manager is notified (segmentClosed) so it
     * can reclaim the frames; any frames left afterwards are swept back
     * into the physical segment.
     */
    sim::Task<> destroySegment(SegmentId seg);

    /** SetSegmentManager(seg, manager) — paper §2.1. */
    sim::Task<> setSegmentManager(SegmentId seg, SegmentManager *mgr);

    /**
     * Bind @p pages pages of @p seg starting at @p at to an equal range
     * of @p target starting at @p target_start. Page sizes must match.
     */
    sim::Task<>
    bindRegion(SegmentId seg, PageIndex at, std::uint64_t pages,
               SegmentId target, PageIndex target_start,
               std::uint32_t prot, bool copy_on_write = false);

    sim::Task<> unbindRegion(SegmentId seg, PageIndex at);

    /**
     * MigratePages(src, dst, srcPage, dstPage, pages, sFlgs, cFlgs) —
     * move page frames between segments, applying flag edits. Returns
     * the number of destination pages created (differs from @p pages
     * when the segments have different page sizes).
     */
    sim::Task<std::uint64_t>
    migratePages(SegmentId src, SegmentId dst, PageIndex src_page,
                 PageIndex dst_page, std::uint64_t pages,
                 std::uint32_t set_flags, std::uint32_t clear_flags);

    /** ModifyPageFlags — flag edits without moving frames. */
    sim::Task<std::uint64_t>
    modifyPageFlags(SegmentId seg, PageIndex page, std::uint64_t pages,
                    std::uint32_t set_flags, std::uint32_t clear_flags);

    /** GetPageAttributes — flags and physical address per page. */
    sim::Task<std::vector<PageAttribute>>
    getPageAttributes(SegmentId seg, PageIndex page, std::uint64_t pages);

    // ------------------------------------------------------------------
    // Memory reference path
    // ------------------------------------------------------------------

    /** Reference a byte address through the process's address space. */
    sim::Task<> touch(Process &p, std::uint64_t vaddr, AccessType a);

    /** Reference a page of a specific segment (block access path). */
    sim::Task<>
    touchSegment(Process &p, SegmentId seg, PageIndex page, AccessType a);

    // ------------------------------------------------------------------
    // Data movement
    // ------------------------------------------------------------------

    /** Copy bytes into an own page of a segment (no time charged). */
    void
    writePageData(SegmentId seg, PageIndex page, std::uint64_t offset,
                  std::span<const std::byte> data);

    /** Copy bytes out of an own page of a segment (no time charged). */
    void
    readPageData(SegmentId seg, PageIndex page, std::uint64_t offset,
                 std::span<std::byte> out);

    /** Write through a process's address space, faulting as needed. */
    sim::Task<>
    copyIn(Process &p, std::uint64_t vaddr,
           std::span<const std::byte> data);

    /** Read through a process's address space, faulting as needed. */
    sim::Task<>
    copyOut(Process &p, std::uint64_t vaddr, std::span<std::byte> out);

    /** Charge memory-copy time for @p bytes. */
    sim::Task<> chargeCopy(std::uint64_t bytes);

    /** Charge zero-fill time for @p bytes. */
    sim::Task<> chargeZero(std::uint64_t bytes);

    // ------------------------------------------------------------------
    // Zero-simulated-time functional primitives
    // ------------------------------------------------------------------

    SegmentId
    createSegmentNow(std::string name, std::uint32_t page_size,
                     std::uint64_t page_limit, UserId owner,
                     SegmentManager *mgr = nullptr);

    void setSegmentManagerNow(SegmentId seg, SegmentManager *mgr);

    void
    bindRegionNow(SegmentId seg, PageIndex at, std::uint64_t pages,
                  SegmentId target, PageIndex target_start,
                  std::uint32_t prot, bool copy_on_write = false);

    void unbindRegionNow(SegmentId seg, PageIndex at);

    std::uint64_t
    migratePagesNow(SegmentId src, SegmentId dst, PageIndex src_page,
                    PageIndex dst_page, std::uint64_t pages,
                    std::uint32_t set_flags, std::uint32_t clear_flags,
                    std::uint64_t *bytes_zeroed = nullptr);

    std::uint64_t
    modifyPageFlagsNow(SegmentId seg, PageIndex page, std::uint64_t pages,
                       std::uint32_t set_flags, std::uint32_t clear_flags);

    std::vector<PageAttribute>
    getPageAttributesNow(SegmentId seg, PageIndex page,
                         std::uint64_t pages) const;

    // ------------------------------------------------------------------
    // Introspection (tests, managers, benchmarks)
    // ------------------------------------------------------------------

    bool segmentExists(SegmentId s) const;
    Segment &segment(SegmentId s);
    const Segment &segment(SegmentId s) const;

    const FrameOwner &frameOwner(hw::FrameId f) const;

    /** Number of frames currently in the physical segment (free pool). */
    std::uint64_t physSegmentFrames() const;

    /**
     * Check the frame-conservation invariant: every base frame is owned
     * by exactly one segment page, and ownership records agree with
     * segment page tables. Returns true if consistent; otherwise fills
     * @p why.
     */
    bool checkFrameInvariant(std::string *why = nullptr) const;

    struct Stats
    {
        std::uint64_t faults = 0;
        std::uint64_t missingFaults = 0;
        std::uint64_t protectionFaults = 0;
        std::uint64_t cowFaults = 0;
        std::uint64_t managerCalls = 0;
        std::uint64_t migrateCalls = 0;
        std::uint64_t pagesMigrated = 0;
        std::uint64_t modifyFlagCalls = 0;
        std::uint64_t getAttrCalls = 0;
        std::uint64_t zeroFills = 0;
        std::uint64_t bytesZeroed = 0;
        std::uint64_t bytesCopied = 0;
        std::uint64_t segmentsCreated = 0;
        std::uint64_t segmentsDestroyed = 0;
        std::uint64_t tlbMisses = 0;

        // Resolve front-cache effectiveness (host-side counters: no
        // simulated time or events depend on them).
        std::uint64_t resolveHits = 0;
        std::uint64_t resolveMisses = 0;

        // Batched fault delivery (active only when the machine opts
        // in with MachineConfig::faultCoalescing).
        std::uint64_t faultBatches = 0;   ///< coalesced dispatches
        std::uint64_t faultsCoalesced = 0; ///< faults carried by them

        // Shared-kernel per-CPU fault path.
        std::uint64_t cpuTouchesQueued = 0; ///< touches parked on CPU queues
        std::uint64_t cpuDrains = 0;        ///< CPU-queue drain passes

        // Resilience / failure-path counters.
        std::uint64_t faultTimeouts = 0;   ///< deadline expiries
        std::uint64_t faultRedeliveries = 0;
        std::uint64_t failovers = 0;       ///< segments reassigned
        std::uint64_t managerCrashes = 0;  ///< handler exceptions contained
        std::uint64_t injectedStalls = 0;
        std::uint64_t injectedLies = 0;
        std::uint64_t framesReclaimed = 0; ///< unilateral reclamations
        std::uint64_t closeFailures = 0;   ///< segmentClosed crashes
        std::uint64_t ioErrors = 0;        ///< DiskErrors seen by paging
        std::uint64_t ioRetries = 0;       ///< paging retries issued

        // Fault-path latency (sum and max over deliverFault, entry to
        // resolution, in simulated time). Pure accumulation: no events
        // are scheduled, so enabling nothing keeps runs bit-identical.
        sim::Duration faultLatencyTotal = 0;
        sim::Duration faultLatencyMax = 0;

        void reset() { *this = Stats{}; }
    };

    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }

    /** Result of resolving a segment reference (exposed for tests). */
    using Resolution = ::vpp::kernel::Resolution;

    Resolution resolve(SegmentId seg, PageIndex page);

    /**
     * Resolve without consulting or filling the front-cache: the
     * linear-rescan oracle differential tests compare against.
     */
    Resolution resolveUncached(SegmentId seg, PageIndex page);

    // ------------------------------------------------------------------
    // Shared-kernel sharding: per-CPU resolve caches and fault queues
    // ------------------------------------------------------------------
    //
    // One kernel can service CPUs owned by several shards of a
    // ShardedSimulation. The contract that keeps this deterministic
    // and race-free:
    //
    //  - cpuResolve/cpuStore for CPU c are called only by the shard
    //    that owns CPU c; each CpuState is single-writer.
    //  - A probe validates against a per-segment epoch table. In
    //    *live* mode (snapshot_epochs = false, the unsharded case)
    //    that is `segEpochs_` itself: every mutation invalidates
    //    affected entries strictly and immediately. In *snapshot*
    //    mode the probe reads `segEpochSnapshot_`, a copy published
    //    only from the sharded engine's single-threaded barrier via
    //    publishCpuEpochs() — remote shards may serve a stale entry
    //    until the next epoch boundary (bounded by the engine's
    //    lookahead), but never observe a torn or racing table.
    //  - All kernel mutation (touchOnCpu faults, migrate, reclaim)
    //    happens on the kernel's home shard, arriving from remote
    //    shards through the engine's mailboxes in canonical merge
    //    order, so manager-visible batch composition is identical at
    //    any worker count.

    /**
     * Create @p cpus per-CPU resolve caches (replacing any existing
     * ones). @p snapshot_epochs selects snapshot validation (sharded
     * runs) over live validation (single-shard runs).
     */
    void configureCpus(unsigned cpus, bool snapshot_epochs);

    unsigned cpuCount() const
    {
        return static_cast<unsigned>(cpus_.size());
    }

    /**
     * Publish the current per-segment epochs to the snapshot probes
     * validate against. Call from single-threaded context only (the
     * sharded engine's barrier hook, or tests).
     */
    void publishCpuEpochs();

    /**
     * Probe CPU @p cpu's cache. Returns the cached resolution on a
     * hit, nullptr on a miss; counts per-CPU hit/miss. Safe to call
     * from the owning shard's worker thread concurrently with other
     * CPUs' probes and (in snapshot mode) with home-shard mutation.
     */
    const CpuResolution *
    cpuResolve(unsigned cpu, SegmentId seg, PageIndex page);

    /** Install a resolution into CPU @p cpu's cache (owner shard only). */
    void cpuStore(unsigned cpu, const CpuResolution &r);

    /**
     * Resolve (seg, page) by walking the binding chain and package the
     * result as a cacheable value, recording the chain segments and
     * their epoch sum. Home shard only. Non-present or deeper than
     * kResolveChainMax resolutions come back with chainLen 0 —
     * cpuStore ignores those.
     */
    CpuResolution resolveForCpu(SegmentId seg, PageIndex page);

    /**
     * Fault entry point for a CPU: parks the touch on the CPU's
     * in-queue; a single drain walks the queues in CPU-id order and
     * feeds the faults through the regular touchSegment path (and so
     * into the coalescing/batch machinery). Same-instant faults from
     * many CPUs therefore reach managers in one deterministic batch
     * order regardless of how many shards raised them.
     */
    sim::Task<> touchOnCpu(unsigned cpu, Process &p, SegmentId seg,
                           PageIndex page, AccessType a);

    std::uint64_t cpuHits(unsigned cpu) const;
    std::uint64_t cpuMisses(unsigned cpu) const;

    /** Current mutation epoch of a segment (tests). */
    std::uint64_t segmentEpoch(SegmentId s) const
    {
        return s < segEpochs_.size() ? segEpochs_[s] : 0;
    }

  private:
    static constexpr int kMaxFaultRetries = 8;
    static constexpr int kMaxBindingDepth = 8;

    sim::Task<> deliverFault(Fault f);

    /**
     * Coalescing fault queue (MachineConfig::faultCoalescing): faults
     * against one manager enqueue here and share one dispatch
     * crossing per drain. Resilient delivery and injection stay on
     * the per-fault path so deadline/redelivery semantics (and the
     * manager-crash failover sweep) are unchanged.
     */
    sim::Task<> enqueueCoalesced(SegmentManager *mgr, const Fault &f);
    sim::Task<> drainFaultQueue(SegmentManager *mgr);

    sim::Task<> notifyClosed(SegmentManager *mgr, SegmentId seg);
    sim::SimMutex &managerLock(SegmentManager *mgr);

    /**
     * Invoke the handler, applying manager-layer fault injection
     * (stall / crash / lie) unless @p mgr is the trusted default
     * manager. With no engine attached this is a plain handleFault.
     */
    sim::Task<> invokeHandler(SegmentManager *mgr, const Fault &f);

    /** Injection-active slow path of invokeHandler. */
    sim::Task<> invokeHandlerInjected(SegmentManager *mgr,
                                      const Fault &f);

    /** Resilient delivery: deadline, redelivery, failover. */
    sim::Task<> deliverResilient(SegmentManager *mgr, Fault f);

    /**
     * One handler attempt raced against the fault deadline. Returns
     * whether the fault is resolved afterwards; a late or crashing
     * handler is contained (its outcome is recorded, never rethrown).
     */
    sim::Task<bool> attemptWithDeadline(SegmentManager *mgr,
                                        const Fault &f);

    /** The spawned half of attemptWithDeadline (detached root). */
    sim::Task<> runHandlerAttempt(
        SegmentManager *mgr, Fault f,
        std::shared_ptr<sim::Promise<int>> done);

    bool faultResolved(const Fault &f);

    /**
     * Unilaterally reclaim the clean, unpinned frames of every segment
     * managed by @p mgr (§2: the kernel can always take memory back).
     * Dirty and pinned pages are left so no data is lost. Returns
     * frames reclaimed into the physical segment.
     */
    std::uint64_t reclaimUnresponsive(SegmentManager *mgr);

    /** Follow non-copy-on-write bindings to the install target. */
    void resolveForInstall(SegmentId &seg, PageIndex &page) const;

    /**
     * Invalidate every segment's one-entry resolve cache. Called by
     * anything that changes what resolve() could observe: migrations,
     * bind/unbind, flag edits, segment destruction.
     */
    void invalidateResolutions()
    {
        resolveEpoch_.store(
            resolveEpoch_.load(std::memory_order_relaxed) + 1,
            std::memory_order_release);
    }

    /**
     * Bump one segment's mutation epoch, invalidating exactly the
     * per-CPU entries whose resolution chain passed through it. Every
     * invalidateResolutions() site also names the segments it touched
     * via this — the global epoch stays the coarse per-Segment cache
     * protocol, the per-segment epochs the fine-grained per-CPU one.
     */
    void bumpSegEpoch(SegmentId s)
    {
        if (s < segEpochs_.size()) [[likely]]
            ++segEpochs_[s];
    }


    void sweepToPhysSegment(Segment &seg);

    /**
     * O(1) segment lookup: `byId_` is a dense id -> Segment* index
     * maintained alongside the ownership map (ids are sequential).
     * The fault hot path resolves segments several times per fault;
     * the std::map walk was a measurable fraction of it.
     */
    Segment &
    segmentOrThrow(SegmentId s)
    {
        if (s < byId_.size() && byId_[s]) [[likely]]
            return *byId_[s];
        throwBadSegment(s);
    }

    const Segment &
    segmentOrThrow(SegmentId s) const
    {
        if (s < byId_.size() && byId_[s]) [[likely]]
            return *byId_[s];
        throwBadSegment(s);
    }

    [[noreturn]] static void throwBadSegment(SegmentId s);

    /**
     * The shared cache-free resolution walk. When @p chain is given
     * it records every segment id visited (origin through final
     * owner) up to kResolveChainMax entries; *chain_len comes back
     * UINT32_MAX when the walk was deeper than fits (uncacheable).
     */
    Resolution walkResolution(Segment &origin, SegmentId seg,
                              PageIndex page,
                              SegmentId *chain = nullptr,
                              std::uint32_t *chain_len = nullptr);

    std::uint32_t framesPerPage(const Segment &s) const;

    sim::Simulation *sim_;
    hw::MachineConfig config_;
    hw::PhysicalMemory memory_;
    SegmentId nextSegment_ = 0;
    std::map<SegmentId, std::unique_ptr<Segment>> segments_;
    std::vector<Segment *> byId_; ///< dense id index over segments_
    std::map<SegmentId, int> bindRefs_; ///< # regions targeting a segment
    std::vector<FrameOwner> frames_;
    std::map<SegmentManager *, std::unique_ptr<sim::SimMutex>> mgrLocks_;

    struct PendingFault
    {
        Fault f;
        std::shared_ptr<sim::Promise<>> done;
    };

    struct FaultQueue
    {
        std::vector<PendingFault> pending;
        bool draining = false;
    };

    std::map<SegmentManager *, FaultQueue> faultQueues_;

    /** A CPU touch parked on its in-queue awaiting the drain. */
    struct PendingCpuTouch
    {
        Process *proc = nullptr;
        SegmentId seg = kInvalidSegment;
        PageIndex page = 0;
        AccessType access = AccessType::Read;
        std::shared_ptr<sim::Promise<>> done;
    };

    /**
     * Everything a simulated CPU owns. During a sharded run each
     * CpuState is read and written only by its owner shard, except
     * `pending`, which only the kernel's home shard touches.
     */
    struct CpuState
    {
        CpuResolveCache cache;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::vector<PendingCpuTouch> pending;
    };

    sim::Task<> drainCpuTouches();
    sim::Task<> runCpuTouch(PendingCpuTouch t);

    std::vector<std::unique_ptr<CpuState>> cpus_;
    bool cpuSnapshotMode_ = false;
    bool cpuDraining_ = false;

    /**
     * Per-segment mutation epochs, dense by SegmentId (slots survive
     * segment destruction so stale chains through a dead id still
     * compare unequal). The snapshot is the copy remote shards
     * validate against between barrier publishes.
     */
    std::vector<std::uint64_t> segEpochs_;
    std::vector<std::uint64_t> segEpochSnapshot_;

    std::unique_ptr<hw::Tlb> tlb_;
    Stats stats_;
    std::atomic<std::uint64_t> resolveEpoch_{1}; ///< segment caches start at 0
    ResiliencePolicy resilience_;
    SegmentManager *defaultMgr_ = nullptr;
    inject::Engine *inject_ = nullptr;

};

/**
 * Per-thread resolve front-cache counters, following the pattern of
 * hw's thread-local disk counters: the sweep runner resets them per
 * row and reports them on the (undiffed) stderr cost line, keeping
 * the committed stdout/JSON tables byte-identical.
 */
void resetThreadResolveCounters();
std::uint64_t threadResolveHits();
std::uint64_t threadResolveMisses();

/**
 * Fold externally-merged counts (e.g. per-CPU cache hits gathered in
 * CPU-id order after a shared-kernel run) into this thread's resolve
 * counters so they show on the sweep cost line.
 */
void addThreadResolveCounts(std::uint64_t hits, std::uint64_t misses);

/**
 * Per-thread memory-market counters, same pattern: the SPCM reports
 * auction rounds, bids carried in them, and the worst unserved-bid age
 * here; the sweep runner surfaces them on the stderr cost line. They
 * live in the core library (not managers) so the sweep layer can
 * reference them from benches that do not link vpp_managers.
 */
void resetThreadMarketCounters();
void noteThreadMarketRound(std::uint64_t bids);
void noteThreadMarketStarve(sim::Duration age);
std::uint64_t threadMarketRounds();
std::uint64_t threadMarketBids();
sim::Duration threadMarketMaxStarve();

/** Run a task to completion on a fresh simulation (test helper). */
template <typename T>
T
runTask(sim::Simulation &s, sim::Task<T> t)
{
    std::optional<T> out;
    s.spawn([](sim::Task<T> inner, std::optional<T> *o) -> sim::Task<> {
        *o = co_await std::move(inner);
    }(std::move(t), &out));
    s.run();
    if (!out)
        throw sim::SimPanic("task did not complete");
    return std::move(*out);
}

inline void
runTask(sim::Simulation &s, sim::Task<> t)
{
    bool done = false;
    s.spawn([](sim::Task<> inner, bool *d) -> sim::Task<> {
        co_await std::move(inner);
        *d = true;
    }(std::move(t), &done));
    s.run();
    if (!done)
        throw sim::SimPanic("task did not complete");
}

} // namespace vpp::kernel

#endif // VPP_CORE_KERNEL_H
