/**
 * @file
 * Two-level sparse page table for segments.
 *
 * Replaces the seed's std::map<PageIndex, PageEntry>: a directory of
 * fixed-size leaf chunks indexed by `page >> kLeafBits`, each leaf a
 * flat array of entries plus a presence bitmap. Lookup, insert and
 * erase are O(1); ordered iteration walks the directory and scans
 * bitmaps with count-trailing-zeros, preserving the ascending-page
 * order the kernel's sweep and the managers' clock passes rely on.
 *
 * Entry addresses are stable for the lifetime of the table: leaves are
 * never moved or freed on erase (the directory holds unique_ptrs and
 * keeps empty leaves as high-water storage), so a PageEntry* stays
 * valid until the covering page is erased and something else is
 * installed there — the same guarantee std::map gave, minus iterator
 * invalidation hazards.
 */

#ifndef VPP_CORE_PAGE_TABLE_H
#define VPP_CORE_PAGE_TABLE_H

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/types.h"
#include "hw/types.h"

namespace vpp::kernel {

/** A page with a frame installed. */
struct PageEntry
{
    hw::FrameId frame = hw::kInvalidFrame;
    std::uint32_t flags = 0;
};

class PageTable
{
  public:
    static constexpr unsigned kLeafBits = 9;
    static constexpr PageIndex kLeafPages = PageIndex{1} << kLeafBits;
    static constexpr PageIndex kLeafMask = kLeafPages - 1;
    static constexpr unsigned kWords = kLeafPages / 64;

    struct Leaf
    {
        std::uint64_t present[kWords] = {};
        std::uint32_t count = 0;
        PageEntry slots[kLeafPages];
    };

    std::uint64_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        leaves_.clear();
        size_ = 0;
    }

    const PageEntry *
    find(PageIndex p) const
    {
        const std::size_t li = p >> kLeafBits;
        if (li >= leaves_.size() || !leaves_[li])
            return nullptr;
        const Leaf &leaf = *leaves_[li];
        const PageIndex s = p & kLeafMask;
        if (!(leaf.present[s >> 6] & (std::uint64_t{1} << (s & 63))))
            return nullptr;
        return &leaf.slots[s];
    }

    PageEntry *
    find(PageIndex p)
    {
        return const_cast<PageEntry *>(
            static_cast<const PageTable *>(this)->find(p));
    }

    bool contains(PageIndex p) const { return find(p) != nullptr; }

    /**
     * Entry at @p p, default-constructed and marked present if absent
     * (matching std::map::operator[] so call sites read identically).
     */
    PageEntry &
    operator[](PageIndex p)
    {
        Leaf &leaf = leafFor(p);
        const PageIndex s = p & kLeafMask;
        const std::uint64_t bit = std::uint64_t{1} << (s & 63);
        if (!(leaf.present[s >> 6] & bit)) {
            leaf.present[s >> 6] |= bit;
            ++leaf.count;
            ++size_;
            leaf.slots[s] = PageEntry{};
        }
        return leaf.slots[s];
    }

    bool
    erase(PageIndex p)
    {
        const std::size_t li = p >> kLeafBits;
        if (li >= leaves_.size() || !leaves_[li])
            return false;
        Leaf &leaf = *leaves_[li];
        const PageIndex s = p & kLeafMask;
        const std::uint64_t bit = std::uint64_t{1} << (s & 63);
        if (!(leaf.present[s >> 6] & bit))
            return false;
        leaf.present[s >> 6] &= ~bit;
        --leaf.count;
        --size_;
        return true;
    }

    /** Largest present page, if any (replaces map::rbegin()). */
    std::optional<PageIndex>
    maxPage() const
    {
        for (std::size_t li = leaves_.size(); li-- > 0;) {
            const Leaf *leaf = leaves_[li].get();
            if (!leaf || leaf->count == 0)
                continue;
            for (unsigned w = kWords; w-- > 0;) {
                if (leaf->present[w]) {
                    const unsigned b =
                        63 - std::countl_zero(leaf->present[w]);
                    return (static_cast<PageIndex>(li) << kLeafBits) +
                           w * 64 + b;
                }
            }
        }
        return std::nullopt;
    }

    /** Pair-like iteration value; binds as `const auto &[page, entry]`. */
    template <typename EntryRef>
    struct Item
    {
        PageIndex first;
        EntryRef second;
    };

    template <bool Const>
    class Iter
    {
        using TablePtr =
            std::conditional_t<Const, const PageTable *, PageTable *>;
        using EntryRef =
            std::conditional_t<Const, const PageEntry &, PageEntry &>;

      public:
        Iter(TablePtr t, std::size_t li, PageIndex slot)
            : t_(t), li_(li), slot_(slot)
        {
            settle();
        }

        Item<EntryRef>
        operator*() const
        {
            return Item<EntryRef>{
                (static_cast<PageIndex>(li_) << kLeafBits) + slot_,
                t_->leaves_[li_]->slots[slot_]};
        }

        Iter &
        operator++()
        {
            ++slot_;
            settle();
            return *this;
        }

        bool
        operator==(const Iter &o) const
        {
            return li_ == o.li_ && slot_ == o.slot_;
        }

        bool operator!=(const Iter &o) const { return !(*this == o); }

      private:
        /** Advance to the next present slot at or after (li_, slot_). */
        void
        settle()
        {
            const auto &leaves = t_->leaves_;
            while (li_ < leaves.size()) {
                const Leaf *leaf = leaves[li_].get();
                if (leaf && leaf->count != 0 && slot_ < kLeafPages) {
                    unsigned w = static_cast<unsigned>(slot_ >> 6);
                    std::uint64_t word = leaf->present[w] >>
                                         (slot_ & 63);
                    if (word) {
                        slot_ += std::countr_zero(word);
                        return;
                    }
                    for (++w; w < kWords; ++w) {
                        if (leaf->present[w]) {
                            slot_ = w * 64 +
                                    std::countr_zero(leaf->present[w]);
                            return;
                        }
                    }
                }
                ++li_;
                slot_ = 0;
            }
            slot_ = 0; // canonical end()
        }

        TablePtr t_;
        std::size_t li_;
        PageIndex slot_;

        friend class PageTable;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin() { return iterator(this, 0, 0); }
    iterator end() { return iterator(this, leaves_.size(), 0); }
    const_iterator begin() const { return const_iterator(this, 0, 0); }
    const_iterator
    end() const
    {
        return const_iterator(this, leaves_.size(), 0);
    }

  private:
    Leaf &
    leafFor(PageIndex p)
    {
        const std::size_t li = p >> kLeafBits;
        if (li >= leaves_.size())
            leaves_.resize(li + 1);
        if (!leaves_[li])
            leaves_[li] = std::make_unique<Leaf>();
        return *leaves_[li];
    }

    std::vector<std::unique_ptr<Leaf>> leaves_;
    std::uint64_t size_ = 0;
};

} // namespace vpp::kernel

#endif // VPP_CORE_PAGE_TABLE_H
