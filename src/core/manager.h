/**
 * @file
 * The segment-manager interface (paper §2.1-§2.2).
 *
 * A SegmentManager is the process-level module responsible for the
 * pages of the segments bound to it: it handles page, protection and
 * copy-on-write faults, and it is notified when a managed segment is
 * destroyed so it can reclaim the segment's frames.
 *
 * The kernel charges communication costs around each invocation
 * according to the manager's execution mode: a SameProcess manager is
 * reached by an upcall on the faulting process (no context switch); a
 * SeparateProcess manager is a server reached via Send/Receive/Reply
 * with two context switches, and handles one request at a time.
 */

#ifndef VPP_CORE_MANAGER_H
#define VPP_CORE_MANAGER_H

#include <cstdint>
#include <span>
#include <string>

#include "core/fault.h"
#include "core/types.h"
#include "hw/config.h"
#include "sim/task.h"

namespace vpp::kernel {

class Kernel;

class SegmentManager
{
  public:
    SegmentManager(std::string name, hw::ManagerMode mode)
        : name_(std::move(name)), mode_(mode)
    {}

    virtual ~SegmentManager() = default;

    SegmentManager(const SegmentManager &) = delete;
    SegmentManager &operator=(const SegmentManager &) = delete;

    /**
     * Resolve a fault: arrange for the faulting page to become
     * accessible (typically by migrating a frame into it) before
     * returning. Returning without resolving causes the kernel to
     * redeliver; persistent failure raises KernelErrc::FaultLoop.
     */
    virtual sim::Task<> handleFault(Kernel &k, const Fault &f) = 0;

    /**
     * Resolve a batch of faults delivered in one kernel crossing
     * (MachineConfig::faultCoalescing). The communication cost has
     * already been charged once for the whole batch; implementations
     * only pay their per-fault work. Default: sequential handleFault.
     */
    virtual sim::Task<>
    handleFaults(Kernel &k, std::span<const Fault> fs)
    {
        for (const Fault &f : fs)
            co_await handleFault(k, f);
    }

    /**
     * A managed segment is being destroyed; reclaim its frames. Frames
     * still present afterwards are swept into the physical segment.
     */
    virtual sim::Task<>
    segmentClosed(Kernel &k, SegmentId s)
    {
        (void)k;
        (void)s;
        co_return;
    }

    const std::string &name() const { return name_; }
    hw::ManagerMode mode() const { return mode_; }

    /** Total kernel -> manager invocations (faults + closes). */
    std::uint64_t calls() const { return calls_; }
    std::uint64_t faultsHandled() const { return faultsHandled_; }

    /** Resilience counters (kernel-observed misbehaviour, §2-§3). */
    std::uint64_t faultTimeouts() const { return timeouts_; }
    std::uint64_t failovers() const { return failovers_; }
    std::uint64_t crashes() const { return crashes_; }

    void noteCall() { ++calls_; }
    void noteFaultHandled() { ++faultsHandled_; }
    void noteTimeout() { ++timeouts_; }
    void noteFailover() { ++failovers_; }
    void noteCrash() { ++crashes_; }

    void
    resetStats()
    {
        calls_ = 0;
        faultsHandled_ = 0;
        timeouts_ = 0;
        failovers_ = 0;
        crashes_ = 0;
    }

  private:
    std::string name_;
    hw::ManagerMode mode_;
    std::uint64_t calls_ = 0;
    std::uint64_t faultsHandled_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t failovers_ = 0;
    std::uint64_t crashes_ = 0;
};

} // namespace vpp::kernel

#endif // VPP_CORE_MANAGER_H
