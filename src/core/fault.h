/**
 * @file
 * Fault records delivered to segment managers (paper Figure 2).
 */

#ifndef VPP_CORE_FAULT_H
#define VPP_CORE_FAULT_H

#include <cstdint>

#include "core/types.h"

namespace vpp::kernel {

class Process;

enum class AccessType
{
    Read,
    Write,
};

enum class FaultType
{
    MissingPage, ///< reference to a page with no frame
    Protection,  ///< reference denied by page protection flags
    CopyOnWrite, ///< write through a copy-on-write binding
};

const char *faultTypeName(FaultType t);

/**
 * Everything a manager learns about a fault. `segment`/`page` name the
 * faulting location in the segment whose manager is being invoked;
 * `vaSegment`/`vaPage` name the original reference in the address-space
 * segment (they equal segment/page when the process referenced the
 * managed segment directly, e.g. via the block file interface).
 */
struct Fault
{
    FaultType type = FaultType::MissingPage;
    AccessType access = AccessType::Read;

    SegmentId segment = kInvalidSegment;
    PageIndex page = 0;

    SegmentId vaSegment = kInvalidSegment;
    PageIndex vaPage = 0;

    Process *process = nullptr;

    /// CopyOnWrite only: where the kernel will copy the data from.
    SegmentId cowSource = kInvalidSegment;
    PageIndex cowSourcePage = 0;
};

} // namespace vpp::kernel

#endif // VPP_CORE_FAULT_H
