/**
 * @file
 * Application-specific page coloring (paper §1): ask the SPCM for
 * frames by cache color so consecutive virtual pages never collide in
 * a physically-indexed cache, and check the result with
 * GetPageAttributes.
 *
 *   ./build/examples/page_coloring
 */

#include <cstdio>

#include "appmgr/coloring_mgr.h"
#include "core/kernel.h"
#include "hw/cache_model.h"

using namespace vpp;
using kernel::runTask;

int
main()
{
    sim::Simulation sim;
    hw::MachineConfig machine = hw::decstation5000_200();
    machine.memoryBytes = 32 << 20;
    kernel::Kernel kern(sim, machine);
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);

    // A 64 KB direct-mapped physically-indexed cache: 16 page colors.
    hw::CacheModel cache(64 << 10, 16, 1, 4096);
    const std::uint32_t colors = cache.numColors();
    std::printf("cache: 64 KB direct-mapped, %u page colors\n\n",
                colors);

    appmgr::ColoringManager mgr(kern, &spcm, 1, colors);
    mgr.initNow(1024, 32);
    kernel::SegmentId array =
        kern.createSegmentNow("array", 4096, 16, 1, &mgr);
    kernel::Process proc("stencil", 1);

    // Fault in a 16-page working set (exactly one page per color).
    for (kernel::PageIndex p = 0; p < 16; ++p) {
        runTask(sim, kern.touchSegment(proc, array, p,
                                       kernel::AccessType::Write));
    }

    std::printf("page -> frame placement (GetPageAttributes):\n");
    auto attrs = kern.getPageAttributesNow(array, 0, 16);
    for (const auto &a : attrs) {
        std::printf("  page %2llu  frame %4u  phys 0x%07llx  color %2u"
                    "  %s\n",
                    static_cast<unsigned long long>(a.page), a.frame,
                    static_cast<unsigned long long>(a.physAddr),
                    cache.colorOf(a.physAddr),
                    cache.colorOf(a.physAddr) == a.page % colors
                        ? "(matches page color)"
                        : "(MISMATCH)");
    }

    // Sweep the working set and count cache misses.
    const int passes = 20;
    for (int pass = 0; pass < passes; ++pass)
        for (const auto &a : attrs)
            for (int line = 0; line < 4096; line += 64)
                cache.access(a.physAddr + line);

    std::printf("\n%d passes over the 16-page working set: %.2f%% "
                "miss ratio\n(cold misses only — no conflicts: every "
                "page has its own cache region).\n",
                passes, cache.missRatio() * 100.0);
    std::printf("color requests satisfied: %llu, fallbacks: %llu\n",
                static_cast<unsigned long long>(mgr.colorHits()),
                static_cast<unsigned long long>(mgr.colorMisses()));
    return 0;
}
