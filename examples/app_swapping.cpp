/**
 * @file
 * Application-controlled swapping (paper §2.2): a batch program's own
 * segment manager swaps the application out when its dram savings run
 * low, waits while saving income, then swaps back in and continues —
 * including the manager self-residency protocol on resumption.
 *
 *   ./build/examples/app_swapping
 */

#include <cstdio>

#include "vpp.h"

using namespace vpp;
using kernel::runTask;

int
main()
{
    hw::MachineConfig machine = hw::decstation5000_200();
    machine.memoryBytes = 32 << 20;
    apps::StackOptions opts;
    opts.market = mgr::MarketParams{};
    opts.market->chargePerMBSec = 1.0;
    opts.market->freeWhenUncontended = false;
    opts.market->savingsTaxPerSec = 0.0;
    apps::VppStack stack(machine, opts);

    uio::FileId swap = stack.server.createFile("batch.swap", 0);
    appmgr::SwappableAppManager mgr(stack.kern, &stack.spcm, 1,
                                    stack.server, swap, &stack.ucds);
    stack.spcm.account(mgr.spcmClient()).incomeRate = 6.0;
    stack.spcm.deposit(mgr.spcmClient(), 30.0);
    mgr.initNow(8192, 1024); // a 4 MB working allocation
    kernel::Process proc("batch", 1);

    // The manager's own code+data start under the default manager;
    // take them over and pin them (the §2.2 protocol).
    kernel::SegmentId self = runTask(
        stack.sim, stack.ucds.createAnonymous("batch.mgr", 4, 1));
    int attempts =
        runTask(stack.sim, mgr.assumeSelfManagement(proc, self, 4));
    std::printf("manager assumed its own residency in %d attempt(s); "
                "pages pinned\n",
                attempts);

    // The application computes over a 3 MB working set.
    kernel::SegmentId data =
        runTask(stack.sim, mgr.createAppSegment("batch.data", 768));
    for (kernel::PageIndex p = 0; p < 768; ++p) {
        runTask(stack.sim,
                stack.kern.touchSegment(proc, data, p,
                                        kernel::AccessType::Write));
    }
    stack.kern.writePageData(data, 100, 0,
                             std::as_bytes(std::span("checkpoint", 10)));

    auto balance = [&] {
        return stack.spcm.account(mgr.spcmClient()).balance;
    };
    stack.sim.runUntil(sim::sec(5));
    runTask(stack.sim, stack.spcm.query(mgr.spcmClient()));
    std::printf("t=%.0fs computing: balance %.1f drams, %llu frames "
                "held\n",
                sim::toSec(stack.sim.now()), balance(),
                static_cast<unsigned long long>(
                    stack.spcm.account(mgr.spcmClient()).bytesHeld /
                    4096));

    // Savings are running low -> page out and go quiescent (§2.4:
    // "pages out the data and returns to a quiescent state").
    std::printf("\nswapping out (dirty pages -> swap file, frames -> "
                "SPCM)...\n");
    runTask(stack.sim, mgr.swapOut(proc));
    std::printf("  swapped %llu dirty pages, %llu disk writes; self "
                "segment handed to UCDS\n",
                static_cast<unsigned long long>(mgr.pagesSwapped()),
                static_cast<unsigned long long>(stack.disk.writes()));

    // Quiesce and save.
    stack.sim.runUntil(sim::sec(20));
    runTask(stack.sim, stack.spcm.query(mgr.spcmClient()));
    std::printf("t=%.0fs quiescent: balance %.1f drams (saving)\n",
                sim::toSec(stack.sim.now()), balance());

    // Resume: the manager re-runs the residency protocol, then the
    // data faults back in from swap on demand.
    std::printf("\nswapping in...\n");
    runTask(stack.sim, mgr.swapIn(proc, /*eager=*/false));
    runTask(stack.sim, stack.kern.touchSegment(
                           proc, data, 100, kernel::AccessType::Read));
    char buf[16] = {};
    stack.kern.readPageData(data, 100, 0,
                            std::as_writable_bytes(
                                std::span(buf, 10)));
    std::printf("  resumed; page 100 reads \"%s\" after the round "
                "trip (%llu pages restored so far)\n",
                buf,
                static_cast<unsigned long long>(mgr.pagesRestored()));

    std::string why;
    std::printf("\nframe-conservation invariant: %s\n",
                stack.kern.checkFrameInvariant(&why) ? "OK"
                                                     : why.c_str());
    return 0;
}
