/**
 * @file
 * The paper's §1 motivating scenario: a large-scale simulation whose
 * data does not fit in memory scans it each time step. With
 * application-directed read-ahead the disk latency hides behind the
 * compute; dirty pages of a regenerable intermediate are discarded
 * instead of written back.
 *
 *   ./build/examples/scientific_prefetch
 */

#include <cstdio>

#include "appmgr/prefetch_mgr.h"
#include "core/kernel.h"
#include "hw/disk.h"
#include "uio/file_server.h"

using namespace vpp;
using kernel::runTask;

int
main()
{
    sim::Simulation sim;
    hw::MachineConfig machine = hw::sgi4d380();
    machine.memoryBytes = 64 << 20;
    kernel::Kernel kern(sim, machine);
    hw::Disk disk(sim, machine.diskLatency, machine.diskBandwidthMBps);
    uio::FileServer server(sim, disk, sim::usec(200));
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);

    // The particle state: a 4 MB file scanned every time step.
    const std::uint64_t pages = 1024;
    uio::FileId particles =
        server.createFile("particles.dat", pages * 4096);

    appmgr::PrefetchingManager mgr(kern, &spcm, 1, server,
                                   /*window=*/8);
    mgr.initNow(8192, 2048);
    kernel::SegmentId state = kern.createSegmentNow(
        "particles", 4096, pages, 1, &mgr);
    mgr.attach(state, particles);

    // A scratch matrix of intermediate results, regenerated each
    // step: never worth writing back.
    kernel::SegmentId scratch = kern.createSegmentNow(
        "scratch", 4096, 256, 1, &mgr);

    kernel::Process proc("mp3d", 1);
    const sim::Duration compute_per_page =
        machine.instructions(0.6e6); // 20 ms at 30 MIPS

    auto timestep = [&]() -> sim::Task<> {
        for (kernel::PageIndex p = 0; p < pages; ++p) {
            co_await kern.touchSegment(proc, state, p,
                                       kernel::AccessType::Read);
            // Intermediate results go to the scratch matrix.
            co_await kern.touchSegment(proc, scratch, p % 256,
                                       kernel::AccessType::Write);
            co_await sim.delay(compute_per_page);
        }
    };

    std::printf("time step with read-ahead (window 8):\n");
    sim::SimTime t0 = sim.now();
    runTask(sim, timestep());
    double with_prefetch = sim::toSec(sim.now() - t0);
    std::printf("  %.1f s elapsed; %llu pages prefetched, %llu demand "
                "fills\n",
                with_prefetch,
                static_cast<unsigned long long>(mgr.prefetchedPages()),
                static_cast<unsigned long long>(mgr.demandFills()));

    // Between steps, memory is wanted elsewhere: reclaim everything.
    // The scratch matrix is dirty but regenerable -> discard it.
    kern.modifyPageFlagsNow(scratch, 0, 256,
                            kernel::flag::kDiscardable, 0);
    std::uint64_t writes0 = disk.writes();
    runTask(sim, mgr.reclaimRun(kern, state, 0, pages));
    runTask(sim, mgr.reclaimRun(kern, scratch, 0, 256));
    std::printf("  reclaimed %llu pages between steps; dirty scratch "
                "discarded, %llu disk writes\n",
                static_cast<unsigned long long>(pages + 256),
                static_cast<unsigned long long>(disk.writes() -
                                                writes0));

    // The comparison run: no read-ahead, every page a demand fault.
    mgr.setWindow(0);
    std::printf("\ntime step without read-ahead:\n");
    t0 = sim.now();
    runTask(sim, timestep());
    double without = sim::toSec(sim.now() - t0);
    std::printf("  %.1f s elapsed\n", without);

    std::printf("\nread-ahead hid %.1f s of disk latency behind "
                "compute (%.0f%% faster),\nexactly the overlap the "
                "paper's MP3D example calls for.\n",
                without - with_prefetch,
                (1.0 - with_prefetch / without) * 100.0);
    return 0;
}
