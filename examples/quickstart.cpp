/**
 * @file
 * Quickstart: the external page-cache management API in one file.
 *
 * Builds a simulated DECstation running the V++ kernel, writes a
 * custom segment manager in ~30 lines, takes a fault through it
 * (Figure 2), inspects physical placement with GetPageAttributes,
 * and demonstrates copy-on-write.
 *
 *   cmake --build build && ./build/examples/quickstart
 */

#include <cstdio>
#include <span>

#include "core/kernel.h"
#include "managers/generic.h"
#include "managers/spcm.h"

using namespace vpp;
using kernel::runTask;

/**
 * A custom manager: everything interesting is a hook override. This
 * one logs faults and stamps each new page with a pattern (a real
 * application would fetch data or regenerate it).
 */
class MyManager : public mgr::GenericSegmentManager
{
  public:
    MyManager(kernel::Kernel &k, mgr::SystemPageCacheManager *spcm)
        : GenericSegmentManager(k, "my-mgr",
                                hw::ManagerMode::SameProcess, spcm, 1)
    {}

  protected:
    sim::Task<>
    fillPage(kernel::Kernel &k, const kernel::Fault &f,
             kernel::PageIndex dst_page,
             kernel::PageIndex free_slot) override
    {
        std::printf("  [my-mgr] %s fault on segment %u page %llu -> "
                    "filling\n",
                    kernel::faultTypeName(f.type), f.segment,
                    static_cast<unsigned long long>(dst_page));
        char stamp[32];
        std::snprintf(stamp, sizeof(stamp), "page %llu content",
                      static_cast<unsigned long long>(dst_page));
        k.writePageData(freeSegment(), free_slot, 0,
                        std::as_bytes(std::span(stamp, sizeof(stamp))));
        co_return;
    }
};

int
main()
{
    // 1. A simulated machine and the V++ kernel on top of it.
    sim::Simulation sim;
    hw::MachineConfig machine = hw::decstation5000_200();
    kernel::Kernel kern(sim, machine);
    std::printf("machine: %llu MB, %u-byte pages, %llu frames\n",
                static_cast<unsigned long long>(machine.memoryBytes >>
                                                20),
                machine.pageSize,
                static_cast<unsigned long long>(machine.frames()));

    // 2. The SPCM owns the global pool (the well-known physical
    //    segment); our manager gets a free-page segment stocked from
    //    it.
    mgr::SystemPageCacheManager spcm(kern, std::nullopt);
    MyManager manager(kern, &spcm);
    runTask(sim, manager.init(/*capacity=*/1024,
                              /*initial_frames=*/64));

    // 3. Create an application segment managed by our manager and
    //    reference it: the kernel delivers the fault to MyManager.
    kernel::SegmentId seg = runTask(
        sim, kern.createSegment("app-data", machine.pageSize, 64, 1,
                                &manager));
    kernel::Process proc("quickstart", 1);

    std::printf("\ntouching page 5 (takes a fault):\n");
    sim::SimTime t0 = sim.now();
    runTask(sim, kern.touchSegment(proc, seg, 5,
                                   kernel::AccessType::Write));
    std::printf("  fault resolved in %.0f us (paper Table 1: 107 us "
                "for the minimal fault)\n",
                sim::toUsec(sim.now() - t0));

    char buf[32] = {};
    kern.readPageData(seg, 5, 0,
                      std::as_writable_bytes(
                          std::span(buf, sizeof(buf))));
    std::printf("  page 5 now reads: \"%s\"\n", buf);

    // 4. GetPageAttributes: the application can see its physical
    //    placement (the basis for page coloring).
    auto attrs = kern.getPageAttributesNow(seg, 5, 1);
    std::printf("  physical address 0x%llx, dirty=%d referenced=%d\n",
                static_cast<unsigned long long>(attrs[0].physAddr),
                (attrs[0].flags & kernel::flag::kDirty) != 0,
                (attrs[0].flags & kernel::flag::kReferenced) != 0);

    // 5. Copy-on-write: bind a second segment to the first; writes
    //    produce private copies via a CopyOnWrite fault.
    kernel::SegmentId cow = runTask(
        sim, kern.createSegment("cow-view", machine.pageSize, 64, 1,
                                &manager));
    runTask(sim, kern.bindRegion(cow, 0, 64, seg, 0,
                                 kernel::flag::kProtMask, true));
    std::printf("\nwriting through a copy-on-write binding:\n");
    runTask(sim, kern.touchSegment(proc, cow, 5,
                                   kernel::AccessType::Write));
    kern.writePageData(cow, 5, 0,
                       std::as_bytes(std::span("private!", 9)));
    kern.readPageData(seg, 5, 0,
                      std::as_writable_bytes(
                          std::span(buf, sizeof(buf))));
    std::printf("  original still reads: \"%s\"\n", buf);
    kern.readPageData(cow, 5, 0,
                      std::as_writable_bytes(
                          std::span(buf, sizeof(buf))));
    std::printf("  private copy reads:   \"%s\"\n", buf);

    // 6. Who owns what, at the end.
    std::printf("\nmanager handled %llu calls, %llu pages allocated, "
                "free pool %llu frames\n",
                static_cast<unsigned long long>(manager.calls()),
                static_cast<unsigned long long>(
                    manager.pagesAllocated()),
                static_cast<unsigned long long>(manager.freePages()));
    std::string why;
    std::printf("frame-conservation invariant: %s\n",
                kern.checkFrameInvariant(&why) ? "OK" : why.c_str());
    return 0;
}
