/**
 * @file
 * The paper's §3.3 policy on the real kernel interface: a database
 * buffer manager that pins its directory, keeps relations resident,
 * and — when the SPCM tells it memory shrank — discards its index and
 * regenerates it in memory instead of letting it page.
 *
 *   ./build/examples/db_regeneration
 */

#include <cstdio>

#include "appmgr/db_mgr.h"
#include "core/kernel.h"
#include "hw/disk.h"
#include "managers/market.h"
#include "uio/file_server.h"

using namespace vpp;
using kernel::runTask;

int
main()
{
    sim::Simulation sim;
    hw::MachineConfig machine = hw::sgi4d380();
    machine.memoryBytes = 64 << 20;
    kernel::Kernel kern(sim, machine);
    hw::Disk disk(sim, machine.diskLatency, machine.diskBandwidthMBps);
    uio::FileServer server(sim, disk, sim::usec(200));

    // Market-enabled SPCM: the DBMS pays for its memory.
    mgr::MarketParams market;
    market.chargePerMBSec = 0.5;
    market.freeWhenUncontended = false;
    market.savingsTaxPerSec = 0.0;
    mgr::SystemPageCacheManager spcm(kern, market);

    appmgr::DbSegmentManager dbm(kern, &spcm, /*uid=*/1, server,
                                 /*rebuild MInstr/page=*/0.3);
    spcm.account(dbm.spcmClient()).incomeRate = 10.0; // sustains 20 MB
    spcm.deposit(dbm.spcmClient(), 50.0);
    dbm.initNow(16384, 3072); // start with 12 MB

    // A relation (file-backed) and its join index (derived data).
    uio::FileId accounts_file =
        server.createFile("accounts.rel", 8 << 20);
    kernel::SegmentId accounts =
        runTask(sim, dbm.createRelation("accounts", accounts_file));
    kernel::SegmentId index =
        runTask(sim, dbm.createIndex("accounts.idx", 256)); // 1 MB
    kernel::Process proc("dbms", 1);

    // Warm up: fault in the relation's first 512 pages and build the
    // index by touching it (each miss regenerates one page).
    std::printf("warming the buffer pool...\n");
    for (kernel::PageIndex p = 0; p < 512; ++p) {
        runTask(sim, kern.touchSegment(proc, accounts, p,
                                       kernel::AccessType::Read));
    }
    for (kernel::PageIndex p = 0; p < 256; ++p) {
        runTask(sim, kern.touchSegment(proc, index, p,
                                       kernel::AccessType::Write));
    }
    runTask(sim, dbm.pinPages(index, 0, 2)); // root levels

    auto report = [&](const char *when) {
        double rel_res =
            runTask(sim, dbm.residency(accounts, 512));
        double idx_res = runTask(sim, dbm.residency(index, 256));
        std::printf("%-36s relation %3.0f%% resident, index %3.0f%% "
                    "resident, pool %llu frames\n",
                    when, rel_res * 100, idx_res * 100,
                    static_cast<unsigned long long>(dbm.freePages()));
    };
    report("after warmup:");

    // A join probes the index; time it while everything is resident.
    auto join = [&]() -> sim::Task<> {
        for (int probe = 0; probe < 64; ++probe) {
            co_await kern.touchSegment(
                proc, index, (probe * 37) % 256,
                kernel::AccessType::Read);
            co_await kern.touchSegment(
                proc, accounts, (probe * 91) % 512,
                kernel::AccessType::Read);
        }
        co_await sim.delay(machine.instructions(5e6));
    };
    sim::SimTime t0 = sim.now();
    runTask(sim, join());
    std::printf("join with resident index:            %.1f ms\n",
                sim::toMsec(sim.now() - t0));

    // Memory pressure: income drops; the application *asks* the SPCM
    // how much it can afford and adapts by discarding the index.
    std::printf("\n-- income cut to 4 drams/s: the SPCM allocation "
                "shrinks --\n");
    runTask(sim, spcm.query(dbm.spcmClient())); // settle the account
    spcm.account(dbm.spcmClient()).incomeRate = 4.0;
    spcm.account(dbm.spcmClient()).balance = 0.0;
    std::uint64_t freed = runTask(sim, dbm.adaptToPressure());
    std::printf("dbms adapted: discarded %llu index frames "
                "(%llu discards), kept the relation\n",
                static_cast<unsigned long long>(freed),
                static_cast<unsigned long long>(dbm.indexDiscards()));
    report("after adaptation:");

    // The next join regenerates index pages on demand — compute, not
    // disk I/O.
    std::uint64_t disk_reads = disk.reads();
    std::uint64_t rebuilds0 = dbm.indexPageRebuilds();
    t0 = sim.now();
    runTask(sim, join());
    std::printf("join regenerating index on demand:   %.1f ms "
                "(%llu disk reads, %llu pages rebuilt)\n",
                sim::toMsec(sim.now() - t0),
                static_cast<unsigned long long>(disk.reads() -
                                                disk_reads),
                static_cast<unsigned long long>(
                    dbm.indexPageRebuilds() - rebuilds0));

    t0 = sim.now();
    runTask(sim, join());
    std::printf("join with index rebuilt:             %.1f ms\n",
                sim::toMsec(sim.now() - t0));

    std::printf("\nThe pinned directory pages survived the discard "
                "(still resident: %s).\n",
                kern.segment(index).findPage(0) ? "yes" : "no");
    std::printf("Compare Table 4: regeneration costs a little once, "
                "paging would cost\n256 disk faults with locks "
                "held.\n");
    return 0;
}
