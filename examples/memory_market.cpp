/**
 * @file
 * The memory market (paper §2.4) end to end: two applications with
 * different dram incomes compete for frames; the SPCM patrol forces
 * an over-extended client to shed memory, and the client adapts.
 *
 *   ./build/examples/memory_market
 */

#include <cstdio>

#include "core/kernel.h"
#include "managers/generic.h"
#include "managers/spcm.h"

using namespace vpp;
using kernel::runTask;

int
main()
{
    sim::Simulation sim;
    hw::MachineConfig machine = hw::decstation5000_200();
    machine.memoryBytes = 32 << 20; // 8192 frames
    kernel::Kernel kern(sim, machine);

    mgr::MarketParams market;
    market.chargePerMBSec = 1.0;   // D: drams per MB-second
    market.savingsTaxPerSec = 0.02;
    market.ioChargePerMB = 0.5;
    market.freeWhenUncontended = false;
    mgr::SystemPageCacheManager spcm(kern, market);

    mgr::GenericSegmentManager heavy(
        kern, "simulation", hw::ManagerMode::SameProcess, &spcm, 1);
    mgr::GenericSegmentManager light(
        kern, "utility", hw::ManagerMode::SameProcess, &spcm, 2);
    spcm.account(heavy.spcmClient()).incomeRate = 12.0; // 12 MB share
    spcm.account(light.spcmClient()).incomeRate = 3.0;  //  3 MB share
    runTask(sim, heavy.init(8192, 0));
    runTask(sim, light.init(8192, 0));

    auto show = [&](const char *when) {
        std::printf("%-28s", when);
        for (auto *m : {&heavy, &light}) {
            const auto &acct = spcm.account(m->spcmClient());
            std::printf("  %s: %5.1f MB held, %7.1f drams",
                        acct.name.c_str(),
                        acct.bytesHeld / 1048576.0, acct.balance);
        }
        std::printf("\n");
    };

    std::printf("charge rate %.1f dram/MB-s; incomes 12 and 3 "
                "drams/s\n\n",
                market.chargePerMBSec);
    show("t=0:");

    // Let income accrue, then both request far more than their share.
    sim.runUntil(sim::sec(3));
    std::uint64_t h = runTask(sim, heavy.requestFrames(6144)); // 24 MB
    std::uint64_t l = runTask(sim, light.requestFrames(6144));
    std::printf("\nboth request 24 MB: simulation granted %.1f MB, "
                "utility granted %.1f MB\n(grants are limited to what "
                "each income affords)\n\n",
                h * 4096.0 / 1048576, l * 4096.0 / 1048576);
    show("after grants:");

    // Run with the market patrol enforcing solvency while each client
    // adaptively re-requests whatever its income can afford — the
    // closed loop the paper envisions between the SPCM and managers.
    spcm.startPatrol(sim::sec(1));
    bool adapting = true;
    for (auto *m : {&heavy, &light}) {
        sim.spawn([](sim::Simulation &sm,
                     mgr::SystemPageCacheManager &pool,
                     mgr::GenericSegmentManager &client,
                     bool *run) -> sim::Task<> {
            while (*run) {
                co_await sm.delay(sim::sec(2));
                if (!*run)
                    break;
                auto info = co_await pool.query(client.spcmClient());
                std::uint64_t held =
                    pool.account(client.spcmClient()).bytesHeld;
                if (info.affordableBytes > held + (1 << 20)) {
                    co_await client.requestFrames(
                        (info.affordableBytes - held) / 4096);
                }
            }
        }(sim, spcm, *m, &adapting));
    }
    sim.runUntil(sim::sec(10));
    show("t=10 (patrolled):");
    sim.runUntil(sim::sec(25));
    show("t=25 (steady state):");
    spcm.stopPatrol();
    adapting = false;
    sim.runUntil(sim::sec(28));

    const auto &ha = spcm.account(heavy.spcmClient());
    const auto &la = spcm.account(light.spcmClient());
    std::printf("\nsteady-state ratio: %.2f (income ratio 4.0) — "
                "allocation follows income,\nas §2.4 claims: \"its "
                "programs also receive an equal share of the machine "
                "...\naccording to the income supplied\".\n",
                static_cast<double>(ha.bytesHeld) /
                    (la.bytesHeld ? la.bytesHeld : 1));
    std::printf("lifetime accounting: simulation paid %.1f drams for "
                "memory, %.1f in tax;\nutility paid %.1f and %.1f.\n",
                ha.totalMemoryCharge, ha.totalTax,
                la.totalMemoryCharge, la.totalTax);
    return 0;
}
