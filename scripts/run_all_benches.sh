#!/bin/sh
# Full-evaluation sweep: build the relbench preset, run every table
# and ablation bench through the parallel sweep runner, and diff each
# bench's --json metrics and stdout table against the committed
# baselines in bench/baselines/. Because every simulated measurement
# is deterministic and the runner collects results in submission
# order, the outputs are byte-identical for any --jobs value — so a
# plain `diff` is the whole regression gate.
#
# Usage: scripts/run_all_benches.sh [options]
#   --jobs N              worker threads per bench (default: VPP_JOBS
#                         env, else `nproc`)
#   --update              regenerate bench/baselines/ from this run
#   --check-determinism   additionally rerun everything with --jobs 1
#                         and require byte-identical output
#   --perf                finish with scripts/check_perf.sh (host
#                         microbenchmark gate), reusing this build
#   --sanitize            first build the asan preset and run the full
#                         test suite under AddressSanitizer, then do
#                         the relbench sweep as usual
#
# Exit status: 0 if every bench exits 0 (paper tolerances hold) and
# matches its baselines, 1 otherwise.

set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)

jobs="${VPP_JOBS:-}"
if [ -z "$jobs" ]; then
    jobs=$(nproc 2>/dev/null || echo 1)
fi
update=0
checkdet=0
perf=0
sanitize=0
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs) jobs="$2"; shift ;;
        --jobs=*) jobs="${1#--jobs=}" ;;
        --update) update=1 ;;
        --check-determinism) checkdet=1 ;;
        --perf) perf=1 ;;
        --sanitize) sanitize=1 ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
    shift
done

BENCHES="table1_primitives table2_applications table3_vm_activity \
table4_db_response ablation_manager_mode ablation_coloring \
ablation_prefetch ablation_discardable ablation_market \
ablation_clock_batch ablation_placement ablation_page_size \
ablation_paging_period table_robustness table_scaleout \
table_tenants ablation_policy"

if [ "$sanitize" = 1 ]; then
    echo "== sanitize: building asan preset and running tests"
    cmake --preset asan -S "$repo" >/dev/null
    cmake --build --preset asan -j >/dev/null
    ctest --preset asan --output-on-failure
fi

echo "== building relbench preset"
cmake --preset relbench -S "$repo" >/dev/null
cmake --build --preset relbench -j >/dev/null

bindir="$repo/build-relbench/bench"
out="$repo/build-relbench/bench-out"
baselines="$repo/bench/baselines"
mkdir -p "$out"

fail=0
echo "== running $(echo $BENCHES | wc -w) benches with --jobs $jobs"
for b in $BENCHES; do
    if ! "$bindir/$b" --jobs "$jobs" --no-progress \
        --json="$out/$b.json" >"$out/$b.txt" 2>"$out/$b.err"; then
        echo "FAIL  $b: nonzero exit (paper tolerance or row error)"
        sed 's/^/      /' "$out/$b.err"
        fail=1
        continue
    fi
    if [ "$update" = 1 ]; then
        mkdir -p "$baselines"
        cp "$out/$b.json" "$baselines/$b.json"
        cp "$out/$b.txt" "$baselines/$b.txt"
        echo "UPDATE $b"
        continue
    fi
    status="OK   "
    if ! diff -q "$baselines/$b.json" "$out/$b.json" >/dev/null 2>&1
    then
        echo "FAIL  $b: JSON metrics differ from baseline"
        diff -u "$baselines/$b.json" "$out/$b.json" | head -20 || true
        fail=1
        status=""
    fi
    if [ -n "$status" ] &&
        ! diff -q "$baselines/$b.txt" "$out/$b.txt" >/dev/null 2>&1
    then
        echo "FAIL  $b: rendered table differs from baseline"
        diff -u "$baselines/$b.txt" "$out/$b.txt" | head -20 || true
        fail=1
        status=""
    fi
    [ -n "$status" ] && echo "$status $b"
done

if [ "$checkdet" = 1 ] && [ "$fail" = 0 ]; then
    echo "== determinism check: rerunning with --jobs 1"
    for b in $BENCHES; do
        "$bindir/$b" --jobs 1 --no-progress \
            --json="$out/$b.j1.json" >"$out/$b.j1.txt" 2>/dev/null ||
            { echo "FAIL  $b: jobs=1 rerun exited nonzero"; fail=1; }
        if ! cmp -s "$out/$b.json" "$out/$b.j1.json" ||
            ! cmp -s "$out/$b.txt" "$out/$b.j1.txt"; then
            echo "FAIL  $b: output differs between --jobs $jobs and --jobs 1"
            fail=1
        fi
    done
    [ "$fail" = 0 ] && echo "OK    all benches byte-identical at --jobs 1 and --jobs $jobs"
fi

if [ "$checkdet" = 1 ] && [ "$fail" = 0 ]; then
    for b in table_scaleout table_tenants ablation_policy; do
        echo "== determinism check: rerunning $b with --shards 8"
        "$bindir/$b" --jobs 1 --shards 8 --no-progress \
            --json="$out/$b.s8.json" >"$out/$b.s8.txt" 2>/dev/null ||
            { echo "FAIL  $b: shards=8 rerun exited nonzero"; fail=1; }
        if ! cmp -s "$out/$b.json" "$out/$b.s8.json" ||
            ! cmp -s "$out/$b.txt" "$out/$b.s8.txt"; then
            echo "FAIL  $b: output differs between --shards 1 and --shards 8"
            fail=1
        fi
        [ "$fail" = 0 ] && echo "OK    $b byte-identical at --shards 1 and --shards 8"
    done
fi

if [ "$perf" = 1 ] && [ "$fail" = 0 ]; then
    echo "== host microbenchmark gate"
    CHECK_PERF_SKIP_BUILD=1 "$repo/scripts/check_perf.sh"
fi

if [ "$fail" = 0 ]; then
    echo "PASS: full evaluation reproduced"
else
    echo "FAIL: see above" >&2
fi
exit "$fail"
