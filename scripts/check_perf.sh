#!/bin/sh
# Host-perf regression gate: build the relbench preset, run the host
# microbenchmarks with the JSON emitter, and compare per-benchmark CPU
# time against the committed baseline (BENCH_host.json).
#
# Usage: scripts/check_perf.sh [tolerance]
#   tolerance: allowed fractional slowdown before failing (default 0.50;
#              host timing on shared machines is noisy, so keep this
#              generous and rely on the trajectory, not single runs).
#
# Set CHECK_PERF_SKIP_BUILD=1 to reuse an already-built relbench tree
# (scripts/run_all_benches.sh --perf does this after its own build).
#
# Exit status: 0 if every benchmark is within tolerance of the
# baseline (new benchmarks absent from the baseline are reported but
# do not fail), 1 otherwise. A fixed set of required benchmarks —
# the COW frame-store hot paths (BM_CopyFrame, BM_ZeroFill,
# BM_PageInOut), the fault path (BM_FullFaultPath, BM_FaultBatch,
# BM_FaultRedeliver), the resolve path (BM_ResolveThroughBindings,
# BM_ResolveHashedHit, BM_PerCpuResolveHit), the sharded engine
# (BM_ShardedStep, BM_CrossShardEvent), the batched memory market
# (BM_MarketRound), the shared-kernel fault path
# (BM_SharedKernelFault) and the replacement-policy hooks
# (BM_PolicyTouch, BM_PolicyVictim) — must be present in the fresh
# run; their absence fails the gate even if everything that did run
# was fast enough. The policy hooks additionally carry a pair gate:
# BM_PolicyTouch (virtual dispatch through the ReplacementPolicy
# interface) must stay within 1.1x of BM_PolicyTouchInline (the same
# clock called directly), so the src/policy refactor can never
# quietly tax the clockPass hot path.

set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
tol="${1:-0.50}"
case "$tol" in
    ''|*[!0-9.]*|*.*.*)
        echo "error: tolerance must be a number, got '$tol'" >&2
        exit 1 ;;
esac
baseline="$repo/BENCH_host.json"
fresh="$repo/build-relbench/BENCH_host_new.json"

if [ ! -f "$baseline" ]; then
    echo "error: no baseline at $baseline" >&2
    echo "Generate one with:" >&2
    echo "  build-relbench/bench/microbench_host --json=BENCH_host.json" >&2
    exit 1
fi

if [ "${CHECK_PERF_SKIP_BUILD:-0}" != "1" ]; then
    cmake --preset relbench -S "$repo" >/dev/null
    cmake --build --preset relbench --target microbench_host -j \
        >/dev/null
fi

(cd "$repo/build-relbench" &&
     ./bench/microbench_host \
         --json="$fresh" --benchmark_min_time=0.2 >/dev/null)

python3 - "$baseline" "$fresh" "$tol" <<'EOF'
import json, sys

base_path, new_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])

def times(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions used.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = (b["cpu_time"], b["time_unit"])
    return out

base, new = times(base_path), times(new_path)
failed = []
missing = []

# Hot paths must stay benchmarked; a rename or deletion that silently
# drops one of these would blind the gate.
required = ["BM_CopyFrame", "BM_ZeroFill", "BM_PageInOut",
            "BM_FullFaultPath", "BM_FaultBatch", "BM_FaultRedeliver",
            "BM_ResolveThroughBindings", "BM_ResolveHashedHit",
            "BM_PerCpuResolveHit",
            "BM_ShardedStep", "BM_CrossShardEvent",
            "BM_MarketRound", "BM_SharedKernelFault",
            "BM_PolicyTouch", "BM_PolicyVictim"]
for name in required:
    if not any(n == name or n.startswith(name + "/") for n in new):
        missing.append(name)

wide = max((len(n) for n in new), default=20) + 2
print(f"  {'benchmark':<{wide}} {'old ns':>12} {'new ns':>12} "
      f"{'ratio':>8}  status")
for name, (t_new, unit) in sorted(new.items()):
    if name not in base:
        print(f"  {name:<{wide}} {'-':>12} {t_new:>12.1f} "
              f"{'-':>8}  NEW (no baseline)")
        continue
    t_base, base_unit = base[name]
    if base_unit != unit:
        print(f"  {name:<{wide}} {'-':>12} {'-':>12} {'-':>8}  "
              f"SKIP (unit {base_unit} -> {unit})")
        continue
    ratio = t_new / t_base if t_base else float("inf")
    status = "OK" if ratio <= 1.0 + tol else "SLOW"
    print(f"  {name:<{wide}} {t_base:>12.1f} {t_new:>12.1f} "
          f"{ratio:>7.2f}x  {status}")
    if status == "SLOW":
        failed.append(name)

for name in missing:
    print(f"  MISSING {name}: required benchmark not in fresh run "
          f"(renamed or deleted?)")

# Pair gate: the virtual policy hook vs the same clock inlined, both
# from this run (so host noise cancels), must stay within 1.1x.
if "BM_PolicyTouch" in new and "BM_PolicyTouchInline" in new:
    t_virt, _ = new["BM_PolicyTouch"]
    t_inl, _ = new["BM_PolicyTouchInline"]
    ratio = t_virt / t_inl if t_inl else float("inf")
    ok = ratio <= 1.1
    print(f"  policy-hook overhead: {t_virt:.1f} vs {t_inl:.1f} ns "
          f"({ratio:.2f}x, limit 1.10x)  "
          f"{'OK' if ok else 'SLOW'}")
    if not ok:
        failed.append("BM_PolicyTouch vs BM_PolicyTouchInline")

if failed or missing:
    parts = []
    if failed:
        parts.append(f"{len(failed)} regressed beyond {tol:.0%} "
                     f"({', '.join(failed)})")
    if missing:
        parts.append(f"{len(missing)} required missing "
                     f"({', '.join(missing)})")
    print(f"\nFAIL: {'; '.join(parts)}")
    sys.exit(1)
print(f"\nOK: all benchmarks within {tol:.0%} of baseline")
EOF
